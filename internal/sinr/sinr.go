package sinr

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/problem"
)

// Variant selects between the two SINR constraint systems of the paper.
type Variant int

const (
	// Directed: each request has a dedicated sender U and receiver V; only
	// the receiver's SINR constraint must hold (Section 1.1).
	Directed Variant = iota + 1
	// Bidirectional: both endpoints must be able to receive, and the
	// interference from another pair at a point w is determined by the
	// closer of that pair's endpoints: min{ℓ(u_j,w), ℓ(v_j,w)}.
	Bidirectional
)

// String returns the variant name.
func (v Variant) String() string {
	switch v {
	case Directed:
		return "directed"
	case Bidirectional:
		return "bidirectional"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Model carries the parameters of the physical model.
type Model struct {
	// Alpha is the path-loss exponent α ≥ 1 (typically 2..5).
	Alpha float64
	// Beta is the gain β > 0: the minimum required SINR.
	Beta float64
	// Noise is the ambient noise ν ≥ 0. The paper's analysis uses ν = 0.
	Noise float64

	// cache is the optional precomputed affectance engine the interference
	// queries delegate to when it covers their (instance, powers) pair.
	// Attach with WithCache; package affect provides the implementation.
	cache Cache
}

// Cache is the hook through which a precomputed affectance engine (package
// affect) accelerates the Model's interference queries. A cache is built
// for one (instance, path-loss exponent, powers) tuple; the gain β and the
// noise ν enter only at query time, so a cache survives WithBeta.
//
// Row/column accessors return nil when the cache was not built for the
// corresponding variant, in which case the Model falls back to the direct
// computation. All returned slices have one entry per request; the diagonal
// entry (a request's effect on itself) is stored as zero and must be
// skipped by exclusion logic, exactly as the direct loops skip j == i.
type Cache interface {
	// Covers reports whether the cache was built for this instance, this
	// path-loss exponent, and powers equal to these (the slice passed at
	// build time, or any slice with bitwise-equal contents).
	Covers(in *problem.Instance, alpha float64, powers []float64) bool
	// DirectedInto returns row i of the directed affectance matrix:
	// entry j is p_j/ℓ(u_j, v_i), the interference request j's sender adds
	// at request i's receiver. Nil unless built for the directed variant.
	DirectedInto(i int) []float64
	// DirectedFrom is the transpose view: entry i of row j is the
	// interference request j's sender adds at request i's receiver.
	DirectedFrom(j int) []float64
	// IntoU returns row i of the bidirectional affectance matrix at
	// endpoint U: entry j is p_j/min{ℓ(u_j,u_i), ℓ(v_j,u_i)}. Nil unless
	// built for the bidirectional variant.
	IntoU(i int) []float64
	// IntoV is IntoU at request i's V endpoint.
	IntoV(i int) []float64
	// FromU is the transpose of IntoU: entry i of row j is the
	// interference request j adds at request i's U endpoint.
	FromU(j int) []float64
	// FromV is the transpose of IntoV.
	FromV(j int) []float64
	// Signals returns p_i/ℓ_i for every request: the received signal
	// strength at a request's own endpoint.
	Signals() []float64
	// Losses returns the endpoint loss ℓ_i of every request.
	Losses() []float64
}

// SetTracker is the incremental set-feasibility engine the schedulers
// drive: it maintains one simultaneously transmitting set and answers
// membership, margin and admission queries without re-scanning the set
// from scratch. Package affect provides the exact dense implementation
// (affect.Tracker); package affect/sparse provides a conservative
// grid-bucketed one whose margins are lower bounds on the true margins,
// so a set it accepts is always truly feasible.
//
// Implementations are not safe for concurrent use.
type SetTracker interface {
	// Len returns the current set size.
	Len() int
	// At returns the k-th member in insertion order, without allocating.
	At(k int) int
	// Contains reports whether request i is in the set.
	Contains(i int) bool
	// Members returns the current set in insertion order (a copy).
	Members() []int
	// Reset empties the tracker without dropping its backing storage.
	Reset()
	// Add inserts request i; it panics if i is already a member.
	Add(i int)
	// Remove deletes request i; it panics if i is not a member.
	Remove(i int)
	// Margin returns the (possibly conservative) SINR margin of member i.
	Margin(i int) float64
	// AddMargin returns the margin request i would have if added, without
	// mutating the tracker.
	AddMargin(i int) float64
	// CanAdd reports whether request i can join without violating its own
	// constraint or any member's.
	CanAdd(i int) bool
	// SetFeasible reports whether every member's constraint holds.
	SetFeasible() bool
	// WorstMargin returns the minimum margin over the members and the
	// request attaining it ((+Inf, -1) for an empty set).
	WorstMargin() (float64, int)
}

// TrackerProvider is the hook through which an affectance engine that does
// not materialize full rows (the sparse engine) exposes its incremental
// feasibility machinery. A cache that implements it is consumed through
// trackers; its row accessors may return nil, and row-walking query paths
// must check this interface before streaming rows.
//
// NewSetTracker returns a fresh empty tracker for the model's gain and
// noise under the given variant, or nil when the engine was not built for
// that variant (or the model's path-loss exponent differs) — callers fall
// back to the direct computation in that case.
type TrackerProvider interface {
	NewSetTracker(m Model, v Variant) SetTracker
}

// WithCache returns a copy of the model with the affectance cache
// attached. Interference queries consult the cache only when it Covers
// their instance and powers, so attaching a cache never changes results —
// it only changes how they are computed. Attach nil to detach.
func (m Model) WithCache(c Cache) Model {
	m.cache = c
	return m
}

// CacheFor returns the attached cache if it covers the given instance and
// powers under this model's path-loss exponent, and nil otherwise. Hot
// loops call it once and then index rows directly.
func (m Model) CacheFor(in *problem.Instance, powers []float64) Cache {
	if m.cache != nil && m.cache.Covers(in, m.Alpha, powers) {
		return m.cache
	}
	return nil
}

// Default returns the model parameters used by the experiments:
// α = 3, β = 1, ν = 0.
func Default() Model { return Model{Alpha: 3, Beta: 1, Noise: 0} }

// Validate reports whether the model parameters are in their legal ranges.
func (m Model) Validate() error {
	if !(m.Alpha >= 1) || math.IsInf(m.Alpha, 0) {
		return fmt.Errorf("sinr: alpha must be ≥ 1, got %g", m.Alpha)
	}
	if !(m.Beta > 0) || math.IsInf(m.Beta, 0) {
		return fmt.Errorf("sinr: beta must be > 0, got %g", m.Beta)
	}
	if m.Noise < 0 || math.IsNaN(m.Noise) {
		return fmt.Errorf("sinr: noise must be ≥ 0, got %g", m.Noise)
	}
	return nil
}

// WithBeta returns a copy of the model with the gain replaced by beta.
func (m Model) WithBeta(beta float64) Model {
	m.Beta = beta
	return m
}

// Loss returns the path loss ℓ = d^α for a distance d. Small integer
// exponents — including the classic free-space α = 2 and the experiments'
// default α = 3 — are expanded into plain multiplications, which are an
// order of magnitude cheaper than math.Pow and agree with it to within a
// few ulps (the feasibility tolerance absorbs the difference; the affect
// oracle cross-check pins this down).
//
//oblint:hotpath
func (m Model) Loss(d float64) float64 {
	switch m.Alpha {
	case 1:
		return d
	case 2:
		return d * d
	case 3:
		return d * d * d
	case 4:
		q := d * d
		return q * q
	}
	if a := m.Alpha; a > 4 && a <= 16 && a == math.Trunc(a) {
		// Exponentiation by squaring for the remaining small integers.
		out, base, k := 1.0, d, int(a)
		for k > 0 {
			if k&1 == 1 {
				out *= base
			}
			base *= base
			k >>= 1
		}
		return out
	}
	//oblint:ignore non-integer alpha fallback; the integer fast paths above cover production models
	return math.Pow(d, m.Alpha)
}

// RequestLoss returns the loss between the endpoints of request i.
func (m Model) RequestLoss(in *problem.Instance, i int) float64 {
	return m.Loss(in.Length(i))
}

// RequestLosses returns the losses of all requests of the instance.
func (m Model) RequestLosses(in *problem.Instance) []float64 {
	out := make([]float64, in.N())
	for i := range out {
		out[i] = m.RequestLoss(in, i)
	}
	return out
}

// Tol is the relative tolerance used by feasibility comparisons to absorb
// floating-point error: a constraint signal ≥ β·interference is accepted if
// signal ≥ β·interference·(1-Tol). Exported so that the incremental
// feasibility trackers of package affect apply the same acceptance rule.
const Tol = 1e-9

// tol is the package-internal alias kept for the existing comparisons.
const tol = Tol

// MinLossToNode returns min{ℓ(u_j, w), ℓ(v_j, w)}: the loss from the closer
// endpoint of request j to node w (used by the bidirectional constraints).
//
//oblint:hotpath
func (m Model) MinLossToNode(in *problem.Instance, j, w int) float64 {
	r := in.Reqs[j]
	//oblint:ignore direct-oracle fallback; engines devirtualize via geom.DistFunc
	du, dv := in.Space.Dist(r.U, w), in.Space.Dist(r.V, w)
	if dv < du {
		du = dv
	}
	return m.Loss(du)
}

// DirectedInterference returns the interference received at the receiver of
// request i from the senders of the other requests in set, under the given
// powers: Σ_{j∈set, j≠i} p_j / ℓ(u_j, v_i).
func (m Model) DirectedInterference(in *problem.Instance, powers []float64, set []int, i int) float64 {
	if c := m.CacheFor(in, powers); c != nil {
		if row := c.DirectedInto(i); row != nil {
			var sum float64
			for _, j := range set {
				if j != i {
					sum += row[j]
				}
			}
			return sum
		}
	}
	vi := in.Reqs[i].V
	var sum float64
	for _, j := range set {
		if j == i {
			continue
		}
		sum += powers[j] / m.Loss(in.Space.Dist(in.Reqs[j].U, vi))
	}
	return sum
}

// BidirectionalInterference returns the interference received at node w from
// the requests in set (excluding request excl, or none if excl < 0):
// Σ_j p_j / min{ℓ(u_j,w), ℓ(v_j,w)}. The node w is arbitrary, so this
// method cannot consult the affectance cache; when w is an endpoint of a
// request, prefer RequestInterferenceU / RequestInterferenceV.
func (m Model) BidirectionalInterference(in *problem.Instance, powers []float64, set []int, w, excl int) float64 {
	var sum float64
	for _, j := range set {
		if j == excl {
			continue
		}
		sum += powers[j] / m.MinLossToNode(in, j, w)
	}
	return sum
}

// RequestInterferenceU returns the bidirectional interference received at
// the U endpoint of request i from the requests of set other than i. It is
// BidirectionalInterference at node u_i with excl = i, but can delegate to
// the affectance cache because the node is identified by its request.
func (m Model) RequestInterferenceU(in *problem.Instance, powers []float64, set []int, i int) float64 {
	if c := m.CacheFor(in, powers); c != nil {
		if row := c.IntoU(i); row != nil {
			var sum float64
			for _, j := range set {
				if j != i {
					sum += row[j]
				}
			}
			return sum
		}
	}
	return m.BidirectionalInterference(in, powers, set, in.Reqs[i].U, i)
}

// RequestInterferenceV is RequestInterferenceU at request i's V endpoint.
func (m Model) RequestInterferenceV(in *problem.Instance, powers []float64, set []int, i int) float64 {
	if c := m.CacheFor(in, powers); c != nil {
		if row := c.IntoV(i); row != nil {
			var sum float64
			for _, j := range set {
				if j != i {
					sum += row[j]
				}
			}
			return sum
		}
	}
	return m.BidirectionalInterference(in, powers, set, in.Reqs[i].V, i)
}

// DirectedMargin returns signal - β·(interference + noise) for request i
// within set, normalized by the signal strength. A non-negative margin (up
// to tolerance) means the constraint holds. Margins are useful for
// diagnosing near-violations and for greedy thinning.
func (m Model) DirectedMargin(in *problem.Instance, powers []float64, set []int, i int) float64 {
	signal := powers[i] / m.RequestLoss(in, i)
	demand := m.Beta * (m.DirectedInterference(in, powers, set, i) + m.Noise)
	if signal == 0 {
		return math.Inf(-1)
	}
	return (signal - demand) / signal
}

// BidirectionalMargin returns the worse of the two endpoint margins of
// request i within set, normalized by the signal strength.
func (m Model) BidirectionalMargin(in *problem.Instance, powers []float64, set []int, i int) float64 {
	signal := powers[i] / m.RequestLoss(in, i)
	if signal == 0 {
		return math.Inf(-1)
	}
	worst := math.Inf(1)
	for side := 0; side < 2; side++ {
		var interf float64
		if side == 0 {
			interf = m.RequestInterferenceU(in, powers, set, i)
		} else {
			interf = m.RequestInterferenceV(in, powers, set, i)
		}
		demand := m.Beta * (interf + m.Noise)
		if mg := (signal - demand) / signal; mg < worst {
			worst = mg
		}
	}
	return worst
}

// Margin dispatches to DirectedMargin or BidirectionalMargin.
func (m Model) Margin(in *problem.Instance, v Variant, powers []float64, set []int, i int) float64 {
	switch v {
	case Directed:
		return m.DirectedMargin(in, powers, set, i)
	case Bidirectional:
		return m.BidirectionalMargin(in, powers, set, i)
	default:
		panic(fmt.Sprintf("sinr: unknown variant %d", int(v)))
	}
}

// RequestFeasible reports whether the SINR constraint of request i holds
// when all requests of set transmit simultaneously with the given powers.
func (m Model) RequestFeasible(in *problem.Instance, v Variant, powers []float64, set []int, i int) bool {
	return m.Margin(in, v, powers, set, i) >= -tol
}

// SetFeasible reports whether all requests in set can transmit
// simultaneously with the given powers.
func (m Model) SetFeasible(in *problem.Instance, v Variant, powers []float64, set []int) bool {
	for _, i := range set {
		if !m.RequestFeasible(in, v, powers, set, i) {
			return false
		}
	}
	return true
}

// ViolationError describes the first violated SINR constraint of a schedule.
type ViolationError struct {
	Variant Variant
	Request int
	Color   int
	Margin  float64
}

// Error formats the violation.
func (e *ViolationError) Error() string {
	return fmt.Sprintf("sinr: %s SINR constraint violated for request %d in color %d (margin %.3g)",
		e.Variant, e.Request, e.Color, e.Margin)
}

// CheckSchedule validates a complete schedule: every request must be
// colored, powers must be positive, and every color class must be feasible.
// It returns nil if the schedule is valid and a *ViolationError for the
// first violated SINR constraint.
func (m Model) CheckSchedule(in *problem.Instance, v Variant, s *problem.Schedule) error {
	if len(s.Colors) != in.N() || len(s.Powers) != in.N() {
		return fmt.Errorf("sinr: schedule size mismatch: %d colors, %d powers, %d requests",
			len(s.Colors), len(s.Powers), in.N())
	}
	for i, c := range s.Colors {
		if c < 0 {
			return fmt.Errorf("sinr: request %d unassigned", i)
		}
		if !(s.Powers[i] > 0) {
			return fmt.Errorf("sinr: request %d has non-positive power %g", i, s.Powers[i])
		}
	}
	for c, class := range s.Classes() {
		if len(class) == 0 {
			return fmt.Errorf("sinr: empty color class %d", c)
		}
		for _, i := range class {
			if mg := m.Margin(in, v, s.Powers, class, i); mg < -tol {
				return &ViolationError{Variant: v, Request: i, Color: c, Margin: mg}
			}
		}
	}
	return nil
}

// ErrEmptySet is returned by helpers that require a non-empty request set.
var ErrEmptySet = errors.New("sinr: empty request set")

// WorstMargin returns the minimum margin over the set and the request index
// attaining it.
func (m Model) WorstMargin(in *problem.Instance, v Variant, powers []float64, set []int) (float64, int, error) {
	if len(set) == 0 {
		return 0, -1, ErrEmptySet
	}
	worst := math.Inf(1)
	arg := set[0]
	for _, i := range set {
		if mg := m.Margin(in, v, powers, set, i); mg < worst {
			worst = mg
			arg = i
		}
	}
	return worst, arg, nil
}
