package sinr

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/problem"
)

// twoPairLine builds two unit-length requests on a line separated by gap:
// u0=0, v0=1, u1=1+gap, v1=2+gap.
func twoPairLine(t *testing.T, gap float64) *problem.Instance {
	t.Helper()
	line, err := geom.NewLine([]float64{0, 1, 1 + gap, 2 + gap})
	if err != nil {
		t.Fatal(err)
	}
	in, err := problem.New(line, []problem.Request{{U: 0, V: 1}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestModelValidate(t *testing.T) {
	tests := []struct {
		name    string
		m       Model
		wantErr bool
	}{
		{name: "default", m: Default(), wantErr: false},
		{name: "alpha below one", m: Model{Alpha: 0.5, Beta: 1}, wantErr: true},
		{name: "zero beta", m: Model{Alpha: 2, Beta: 0}, wantErr: true},
		{name: "negative noise", m: Model{Alpha: 2, Beta: 1, Noise: -1}, wantErr: true},
		{name: "positive noise ok", m: Model{Alpha: 2, Beta: 1, Noise: 0.5}, wantErr: false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.m.Validate(); (err != nil) != tc.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestLoss(t *testing.T) {
	m := Model{Alpha: 3, Beta: 1}
	if got := m.Loss(2); got != 8 {
		t.Errorf("Loss(2) = %g, want 8", got)
	}
	if got := m.Loss(1); got != 1 {
		t.Errorf("Loss(1) = %g, want 1", got)
	}
}

func TestDirectedInterferenceHandComputed(t *testing.T) {
	// Two unit pairs with gap 1: sender u1 at x=2, receiver v0 at x=1.
	// With unit powers and α=2: interference at v0 from u1 is 1/(2-1)^2 = 1.
	m := Model{Alpha: 2, Beta: 1}
	in := twoPairLine(t, 1)
	powers := []float64{1, 1}
	got := m.DirectedInterference(in, powers, []int{0, 1}, 0)
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("interference at request 0 = %g, want 1", got)
	}
	// At request 1's receiver (x=3): sender u0 at x=0, distance 3 → 1/9.
	got = m.DirectedInterference(in, powers, []int{0, 1}, 1)
	if math.Abs(got-1.0/9) > 1e-12 {
		t.Errorf("interference at request 1 = %g, want 1/9", got)
	}
}

func TestBidirectionalUsesCloserEndpoint(t *testing.T) {
	// Interference from request 1 at node v0 (x=1): closer endpoint of
	// request 1 is u1 (x=2), distance 1, not v1 (x=3).
	m := Model{Alpha: 2, Beta: 1}
	in := twoPairLine(t, 1)
	if got := m.MinLossToNode(in, 1, 1); got != 1 {
		t.Errorf("MinLossToNode = %g, want 1 (closer endpoint u1)", got)
	}
	powers := []float64{1, 1}
	got := m.BidirectionalInterference(in, powers, []int{1}, 1, -1)
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("bidirectional interference = %g, want 1", got)
	}
}

func TestMarginSign(t *testing.T) {
	m := Model{Alpha: 2, Beta: 1}
	// Far apart: feasible together.
	far := twoPairLine(t, 100)
	powers := []float64{1, 1}
	if mg := m.DirectedMargin(far, powers, []int{0, 1}, 0); mg <= 0 {
		t.Errorf("far-apart margin = %g, want positive", mg)
	}
	// Touching pairs: infeasible with equal powers at β=1, α=2 (interferer
	// at distance 1 equals the signal distance).
	near := twoPairLine(t, 0.5)
	if mg := m.DirectedMargin(near, powers, []int{0, 1}, 0); mg >= 0 {
		t.Errorf("near margin = %g, want negative", mg)
	}
}

func TestSetFeasibleVariants(t *testing.T) {
	m := Model{Alpha: 3, Beta: 1}
	in := twoPairLine(t, 50)
	powers := []float64{1, 1}
	for _, v := range []Variant{Directed, Bidirectional} {
		if !m.SetFeasible(in, v, powers, []int{0, 1}) {
			t.Errorf("%v: far-apart pairs should be feasible", v)
		}
	}
	singleton := []int{0}
	for _, v := range []Variant{Directed, Bidirectional} {
		if !m.SetFeasible(in, v, powers, singleton) {
			t.Errorf("%v: singleton should be feasible with zero noise", v)
		}
	}
}

func TestNoiseBreaksWeakSignals(t *testing.T) {
	m := Model{Alpha: 2, Beta: 1, Noise: 10}
	in := twoPairLine(t, 100)
	weak := []float64{0.1, 0.1} // signal 0.1 < β·ν = 10
	if m.SetFeasible(in, Directed, weak, []int{0}) {
		t.Error("weak signal should fail against noise")
	}
	strong := []float64{100, 100}
	if !m.SetFeasible(in, Directed, strong, []int{0}) {
		t.Error("strong signal should pass against noise")
	}
}

func TestCheckSchedule(t *testing.T) {
	m := Model{Alpha: 3, Beta: 1}
	in := twoPairLine(t, 50)
	s := problem.NewSchedule(2)
	s.Powers = []float64{1, 1}
	s.Colors = []int{0, 0}
	if err := m.CheckSchedule(in, Directed, s); err != nil {
		t.Errorf("feasible schedule rejected: %v", err)
	}

	// Unassigned request.
	s2 := problem.NewSchedule(2)
	s2.Powers = []float64{1, 1}
	if err := m.CheckSchedule(in, Directed, s2); err == nil {
		t.Error("unassigned request should be rejected")
	}

	// Non-positive power.
	s3 := problem.NewSchedule(2)
	s3.Colors = []int{0, 1}
	s3.Powers = []float64{0, 1}
	if err := m.CheckSchedule(in, Directed, s3); err == nil {
		t.Error("zero power should be rejected")
	}

	// Infeasible class yields a ViolationError.
	near := twoPairLine(t, 0.25)
	s4 := problem.NewSchedule(2)
	s4.Colors = []int{0, 0}
	s4.Powers = []float64{1, 1}
	err := m.CheckSchedule(near, Directed, s4)
	var ve *ViolationError
	if !errors.As(err, &ve) {
		t.Fatalf("want ViolationError, got %v", err)
	}
	if ve.Color != 0 {
		t.Errorf("violation color = %d, want 0", ve.Color)
	}

	// Size mismatch.
	s5 := problem.NewSchedule(1)
	if err := m.CheckSchedule(in, Directed, s5); err == nil {
		t.Error("size mismatch should be rejected")
	}
}

func TestWorstMargin(t *testing.T) {
	m := Model{Alpha: 2, Beta: 1}
	in := twoPairLine(t, 0.5)
	powers := []float64{1, 1}
	mg, arg, err := m.WorstMargin(in, Directed, powers, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Request 0's receiver is next to request 1's sender: it must be the
	// bottleneck.
	if arg != 0 {
		t.Errorf("worst request = %d, want 0", arg)
	}
	if mg >= 0 {
		t.Errorf("worst margin = %g, want negative", mg)
	}
	if _, _, err := m.WorstMargin(in, Directed, powers, nil); !errors.Is(err, ErrEmptySet) {
		t.Errorf("empty set error = %v, want ErrEmptySet", err)
	}
}

// TestPowerScalingInvariance: with zero noise, scaling all powers by a
// positive factor preserves every margin (Section 1.1 observation).
func TestPowerScalingInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Model{Alpha: 1 + 3*r.Float64(), Beta: 0.5 + r.Float64()}
		n := 2 + r.Intn(6)
		pts := make([][]float64, 2*n)
		reqs := make([]problem.Request, n)
		for i := 0; i < n; i++ {
			x, y := r.Float64()*100, r.Float64()*100
			pts[2*i] = []float64{x, y}
			pts[2*i+1] = []float64{x + 1 + r.Float64()*5, y}
			reqs[i] = problem.Request{U: 2 * i, V: 2*i + 1}
		}
		space, err := geom.NewEuclidean(pts)
		if err != nil {
			return false
		}
		in, err := problem.New(space, reqs)
		if err != nil {
			return false
		}
		powers := make([]float64, n)
		for i := range powers {
			powers[i] = 0.5 + r.Float64()*10
		}
		set := make([]int, n)
		for i := range set {
			set[i] = i
		}
		c := 0.001 + r.Float64()*1000
		scaled := make([]float64, n)
		for i := range scaled {
			scaled[i] = powers[i] * c
		}
		for i := 0; i < n; i++ {
			for _, v := range []Variant{Directed, Bidirectional} {
				a := m.Margin(in, v, powers, set, i)
				b := m.Margin(in, v, scaled, set, i)
				if math.Abs(a-b) > 1e-6*(1+math.Abs(a)) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestVariantString(t *testing.T) {
	if Directed.String() != "directed" || Bidirectional.String() != "bidirectional" {
		t.Error("variant names wrong")
	}
	if Variant(99).String() == "" {
		t.Error("unknown variant should still format")
	}
}
