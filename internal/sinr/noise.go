package sinr

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/problem"
)

// ErrNoSlack is returned by LiftSchedule when some SINR constraint of the
// zero-noise schedule is tight, so no finite power scaling can absorb a
// positive noise term.
var ErrNoSlack = errors.New("sinr: schedule has no slack to absorb noise")

// LiftSchedule implements the observation of Section 1.1 constructively:
// a schedule that is feasible for ν = 0 (with strict inequalities) remains
// feasible for any noise ν > 0 after multiplying all power levels by a
// sufficiently large factor. The method computes the smallest safe factor
// from the schedule's absolute slacks, returns the scaled schedule, and
// verifies it against the noisy model.
//
// The receiver's Noise field is ignored (the slack analysis is for ν = 0);
// nu is the target noise level.
func (m Model) LiftSchedule(in *problem.Instance, v Variant, s *problem.Schedule, nu float64) (*problem.Schedule, error) {
	if !(nu > 0) || math.IsInf(nu, 0) || math.IsNaN(nu) {
		return nil, fmt.Errorf("sinr: target noise must be positive and finite, got %g", nu)
	}
	zero := m
	zero.Noise = 0
	if err := zero.CheckSchedule(in, v, s); err != nil {
		return nil, fmt.Errorf("sinr: schedule infeasible already at zero noise: %w", err)
	}

	// Minimum absolute slack signal_i − β·I_i over all requests. The scale
	// factor c must satisfy c·slack_i ≥ β·ν for all i.
	minSlack := math.Inf(1)
	for _, class := range s.Classes() {
		for _, i := range class {
			signal := s.Powers[i] / zero.RequestLoss(in, i)
			var demand float64
			switch v {
			case Directed:
				demand = zero.Beta * zero.DirectedInterference(in, s.Powers, class, i)
			case Bidirectional:
				r := in.Reqs[i]
				du := zero.BidirectionalInterference(in, s.Powers, class, r.U, i)
				dv := zero.BidirectionalInterference(in, s.Powers, class, r.V, i)
				demand = zero.Beta * math.Max(du, dv)
			default:
				return nil, fmt.Errorf("sinr: unknown variant %d", int(v))
			}
			if slack := signal - demand; slack < minSlack {
				minSlack = slack
			}
		}
	}
	if !(minSlack > 0) {
		return nil, ErrNoSlack
	}

	// Safety headroom of 1% over the exact threshold.
	c := 1.01 * m.Beta * nu / minSlack
	if c < 1 {
		c = 1
	}
	lifted := &problem.Schedule{
		Colors: append([]int(nil), s.Colors...),
		Powers: make([]float64, len(s.Powers)),
	}
	for i, p := range s.Powers {
		lifted.Powers[i] = p * c
		if math.IsInf(lifted.Powers[i], 0) {
			return nil, fmt.Errorf("sinr: lifted power overflows for request %d (factor %g)", i, c)
		}
	}
	noisy := m
	noisy.Noise = nu
	if err := noisy.CheckSchedule(in, v, lifted); err != nil {
		return nil, fmt.Errorf("sinr: lifted schedule failed verification: %w", err)
	}
	return lifted, nil
}
