// Package sinr implements the physical interference model used throughout
// the paper: path loss, the Signal to Interference plus Noise Ratio, and
// feasibility checks for the directed and bidirectional variants of the
// interference scheduling problem.
//
// Following Section 1.1 of the paper, the loss between nodes u and v is
// ℓ(u,v) = d(u,v)^α and a set of simultaneously transmitting requests is
// feasible if every request's SINR is at least the gain β. The paper's
// analysis sets the noise ν to zero and requires strict inequality; the
// checks here accept any ν ≥ 0 and use the relative tolerance Tol so that
// schedules produced by floating-point algorithms validate robustly.
//
// Exported entry points:
//
//   - Model carries (α, β, ν) and answers every interference question:
//     Loss/RequestLoss (with fast paths for integer exponents), Margin,
//     RequestFeasible, SetFeasible, WorstMargin, and the schedule
//     validator CheckSchedule.
//   - Variant selects Directed (Section 1.1's sender→receiver
//     constraints) or Bidirectional (both endpoints must decode; the
//     variant Theorem 2 is about).
//   - Cache is the hook for the precomputed affectance engine of package
//     affect: Model.WithCache attaches one, and the interference queries
//     delegate to it whenever it Covers their (instance, powers) pair,
//     falling back to the direct computation otherwise. Cached and
//     uncached paths agree bitwise, so the uncached path remains the
//     oracle.
package sinr
