package sinr

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/problem"
)

func liftFixture(t *testing.T) (*problem.Instance, *problem.Schedule) {
	t.Helper()
	in := twoPairLine(t, 50)
	s := problem.NewSchedule(2)
	s.Colors = []int{0, 0}
	s.Powers = []float64{1, 1}
	return in, s
}

func TestLiftScheduleBasic(t *testing.T) {
	m := Model{Alpha: 3, Beta: 1}
	in, s := liftFixture(t)
	lifted, err := m.LiftSchedule(in, Directed, s, 5)
	if err != nil {
		t.Fatal(err)
	}
	noisy := Model{Alpha: 3, Beta: 1, Noise: 5}
	if err := noisy.CheckSchedule(in, Directed, lifted); err != nil {
		t.Errorf("lifted schedule invalid: %v", err)
	}
	// The original powers must be untouched.
	if s.Powers[0] != 1 {
		t.Error("LiftSchedule mutated its input")
	}
	// Powers must have grown to beat the noise.
	if lifted.Powers[0] <= s.Powers[0] {
		t.Error("lifted powers did not increase")
	}
}

func TestLiftScheduleBidirectional(t *testing.T) {
	m := Model{Alpha: 3, Beta: 1}
	in, s := liftFixture(t)
	lifted, err := m.LiftSchedule(in, Bidirectional, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	noisy := Model{Alpha: 3, Beta: 1, Noise: 2}
	if err := noisy.CheckSchedule(in, Bidirectional, lifted); err != nil {
		t.Errorf("lifted schedule invalid: %v", err)
	}
}

func TestLiftScheduleValidation(t *testing.T) {
	m := Model{Alpha: 3, Beta: 1}
	in, s := liftFixture(t)
	if _, err := m.LiftSchedule(in, Directed, s, 0); err == nil {
		t.Error("zero noise target should fail")
	}
	if _, err := m.LiftSchedule(in, Directed, s, -1); err == nil {
		t.Error("negative noise target should fail")
	}
	// An infeasible base schedule is rejected.
	bad := problem.NewSchedule(2)
	bad.Colors = []int{0, 0}
	bad.Powers = []float64{1, 1}
	near := twoPairLine(t, 0.1)
	if _, err := m.LiftSchedule(near, Directed, bad, 1); err == nil {
		t.Error("infeasible base schedule should fail")
	}
}

func TestLiftScheduleNoSlack(t *testing.T) {
	// α=2, β=1, gap 1: the margin of request 0 is exactly zero (signal 1,
	// interference 1), so no scaling absorbs noise.
	m := Model{Alpha: 2, Beta: 1}
	in := twoPairLine(t, 1)
	s := problem.NewSchedule(2)
	s.Colors = []int{0, 0}
	s.Powers = []float64{1, 1}
	_, err := m.LiftSchedule(in, Directed, s, 1)
	if !errors.Is(err, ErrNoSlack) {
		t.Errorf("error = %v, want ErrNoSlack", err)
	}
}

// TestLiftScheduleProperty: lifting any greedy-style feasible schedule of
// well-separated pairs validates at the target noise level.
func TestLiftScheduleProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		coords := make([]float64, 0, 2*n)
		x := 0.0
		reqs := make([]problem.Request, 0, n)
		for i := 0; i < n; i++ {
			coords = append(coords, x, x+1)
			reqs = append(reqs, problem.Request{U: 2 * i, V: 2*i + 1})
			x += 30 + r.Float64()*50
		}
		l, err := geom.NewLine(coords)
		if err != nil {
			return false
		}
		in, err := problem.New(l, reqs)
		if err != nil {
			return false
		}
		m := Model{Alpha: 3, Beta: 1}
		s := problem.NewSchedule(n)
		for i := range s.Colors {
			s.Colors[i] = 0
			s.Powers[i] = 1
		}
		nu := 0.1 + r.Float64()*100
		lifted, err := m.LiftSchedule(in, Bidirectional, s, nu)
		if err != nil {
			return false
		}
		noisy := m
		noisy.Noise = nu
		return noisy.CheckSchedule(in, Bidirectional, lifted) == nil
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(97))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
