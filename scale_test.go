package oblivious

import (
	"math/rand"
	"testing"

	"repro/internal/instance"
)

// TestScale512 exercises the schedulers at the largest size the evaluation
// uses (512 requests / 1024 nodes) and validates every schedule. Skipped
// under -short.
func TestScale512(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in short mode")
	}
	m := DefaultModel()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(512)), 512, 600, 1, 8)
	if err != nil {
		t.Fatal(err)
	}

	g, err := ScheduleGreedy(m, in, Bidirectional, Sqrt())
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(m, in, Bidirectional, g); err != nil {
		t.Errorf("greedy@512 invalid: %v", err)
	}

	lp, _, err := ScheduleLP(m, in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(m, in, Bidirectional, lp); err != nil {
		t.Errorf("LP@512 invalid: %v", err)
	}
	if lp.NumColors() > 3*g.NumColors()+2 {
		t.Errorf("LP colors %d far above greedy %d at scale", lp.NumColors(), g.NumColors())
	}

	d, err := ScheduleGreedy(m, in, Directed, Sqrt())
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(m, in, Directed, d); err != nil {
		t.Errorf("directed greedy@512 invalid: %v", err)
	}
}
