// Scale coverage: the evaluation sizes of the seed experiments (512) and
// the sparse affectance engine's production sizes (2000–50000).
// BenchmarkSparseScale emits BENCH_scale.json through the shared
// internal/benchio recorder flushed by TestMain in bench_test.go.
package oblivious_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"testing"

	oblivious "repro"
	"repro/internal/affect"
	"repro/internal/affect/sparse"
	"repro/internal/benchio"
	"repro/internal/coloring"
	"repro/internal/instance"
	"repro/internal/power"
	"repro/internal/sinr"
)

// TestScale512 exercises the schedulers at the largest size the seed
// evaluation uses (512 requests / 1024 nodes) and validates every
// schedule. Skipped under -short.
func TestScale512(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in short mode")
	}
	m := oblivious.DefaultModel()
	in, err := instance.UniformRandom(rand.New(rand.NewSource(512)), 512, 600, 1, 8)
	if err != nil {
		t.Fatal(err)
	}

	g, err := oblivious.ScheduleGreedy(m, in, oblivious.Bidirectional, oblivious.Sqrt())
	if err != nil {
		t.Fatal(err)
	}
	if err := oblivious.Validate(m, in, oblivious.Bidirectional, g); err != nil {
		t.Errorf("greedy@512 invalid: %v", err)
	}

	lp, _, err := oblivious.ScheduleLP(m, in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := oblivious.Validate(m, in, oblivious.Bidirectional, lp); err != nil {
		t.Errorf("LP@512 invalid: %v", err)
	}
	if lp.NumColors() > 3*g.NumColors()+2 {
		t.Errorf("LP colors %d far above greedy %d at scale", lp.NumColors(), g.NumColors())
	}

	d, err := oblivious.ScheduleGreedy(m, in, oblivious.Directed, oblivious.Sqrt())
	if err != nil {
		t.Fatal(err)
	}
	if err := oblivious.Validate(m, in, oblivious.Directed, d); err != nil {
		t.Errorf("directed greedy@512 invalid: %v", err)
	}
}

// scaleInstance grows the deployment area with √n so the request density
// — and with it the per-slot contention — stays constant across sizes,
// which is how a production deployment actually scales.
func scaleInstance(tb testing.TB, n int) *oblivious.Instance {
	tb.Helper()
	side := 300 * math.Sqrt(float64(n)/2000)
	in, err := instance.UniformRandom(rand.New(rand.NewSource(int64(n))), n, side, 1, 8)
	if err != nil {
		tb.Fatal(err)
	}
	return in
}

// TestSparseSolveScale runs the public solver API with the sparse engine
// forced at n=2000 for both variants and the online solver, validating
// every schedule against the exact constraints (WithValidation uses the
// uncached oracle), and pins the memory story: the sparse engine must
// store well under a tenth of the dense entry count. Skipped under
// -short.
func TestSparseSolveScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in short mode")
	}
	const n = 2000
	m := oblivious.DefaultModel()
	in := scaleInstance(t, n)

	for _, v := range []oblivious.Variant{oblivious.Bidirectional, oblivious.Directed} {
		res, err := oblivious.Lookup("greedy").Solve(context.Background(), m, in,
			oblivious.WithVariant(v),
			oblivious.WithAffectanceMode(oblivious.AffectSparse),
			oblivious.WithValidation(true))
		if err != nil {
			t.Fatalf("sparse greedy %s: %v", v, err)
		}
		dense, err := oblivious.Lookup("greedy").Solve(context.Background(), m, in,
			oblivious.WithVariant(v),
			oblivious.WithAffectanceMode(oblivious.AffectDense),
			oblivious.WithValidation(true))
		if err != nil {
			t.Fatalf("dense greedy %s: %v", v, err)
		}
		t.Logf("%s: sparse %d colors, dense %d colors", v, res.Stats.Colors, dense.Stats.Colors)
		// Conservative margins cost schedule length; the bound here is a
		// regression tripwire, not a theorem.
		if res.Stats.Colors > 4*dense.Stats.Colors+4 {
			t.Errorf("%s: sparse colors %d far above dense %d", v, res.Stats.Colors, dense.Stats.Colors)
		}
	}

	res, err := oblivious.Lookup("online").Solve(context.Background(), m, in,
		oblivious.WithAffectanceMode(oblivious.AffectSparse),
		oblivious.WithValidation(true))
	if err != nil {
		t.Fatalf("sparse online: %v", err)
	}
	if res.Stats.Online == nil || res.Stats.Online.PeakSlots < res.Stats.Colors {
		t.Errorf("online stats implausible: %+v", res.Stats.Online)
	}

	powers := power.Powers(m, in, power.Sqrt())
	eng, err := sparse.New(m, sinr.Bidirectional, in, powers, sparse.Options{Epsilon: sparse.DefaultEpsilon})
	if err != nil {
		t.Fatal(err)
	}
	if denseEntries := n * n; eng.Entries()*10 > denseEntries {
		t.Errorf("sparse stores %d entries, not sparse against %d dense", eng.Entries(), denseEntries)
	}
}

// scaleRow is one row of BENCH_scale.json: a greedy solve (engine build
// + coloring) at one size and engine mode, with the schedule length the
// conservative margins cost.
type scaleRow struct {
	Benchmark string `json:"benchmark"`
	N         int    `json:"n"`
	Solver    string `json:"solver"`
	Mode      string `json:"mode"`
	Colors    int    `json:"peak_slots"`
	benchio.Metrics
}

var scaleRec = benchio.NewRecorder("BENCH_scale.json")

// BenchmarkSparseScale is the acceptance benchmark of the sparse engine:
// an end-to-end greedy solve (engine build included) at n ∈ {2000,
// 10000, 50000}. Dense runs only at 2000 — at 10000 its matrices already
// need ≈3 GB and at 50000 ≈120 GB, which is the point of the sparse
// engine; n=50000 itself is opt-in via OBLIVIOUS_SCALE_FULL=1 (minutes
// of runtime). Every sparse schedule is cross-checked against the dense
// oracle untimed.
func BenchmarkSparseScale(b *testing.B) {
	m := sinr.Default()
	for _, n := range []int{2000, 10000, 50000} {
		if n == 50000 && os.Getenv("OBLIVIOUS_SCALE_FULL") == "" {
			continue
		}
		in := scaleInstance(b, n)
		powers := power.Powers(m, in, power.Sqrt())
		modes := []string{"sparse"}
		if n <= 2000 {
			modes = append(modes, "dense")
		}
		for _, mode := range modes {
			b.Run(fmt.Sprintf("n=%d/mode=%s", n, mode), func(b *testing.B) {
				b.ReportAllocs()
				runtime.GC()
				defer debug.SetGCPercent(debug.SetGCPercent(-1))
				var sched *oblivious.Schedule
				cp := benchio.Begin()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mm := m
					if mode == "sparse" {
						c, err := sparse.New(m, sinr.Bidirectional, in, powers, sparse.Options{Epsilon: sparse.DefaultEpsilon})
						if err != nil {
							b.Fatal(err)
						}
						mm = m.WithCache(c)
					} else {
						mm = m.WithCache(affect.New(m, sinr.Bidirectional, in, powers))
					}
					s, err := coloring.GreedyFirstFit(mm, in, sinr.Bidirectional, powers, nil)
					if err != nil {
						b.Fatal(err)
					}
					sched = s
				}
				b.StopTimer()
				met := cp.End(b)
				// Dense-oracle cross-check of the produced schedule, untimed:
				// the model carries no cache here, so every margin is the
				// direct exact computation.
				if err := m.CheckSchedule(in, sinr.Bidirectional, sched); err != nil {
					b.Fatalf("%s schedule fails the dense oracle: %v", mode, err)
				}
				scaleRec.Record(fmt.Sprintf("SparseScale/%07d/greedy/%s", n, mode),
					scaleRow{Benchmark: "SparseScale", N: n, Solver: "greedy", Mode: mode, Colors: sched.NumColors(), Metrics: met})
			})
		}
	}

	// The pipeline and distributed cores ride the same tracker interfaces
	// since the dense gate fell: solve n=10000 end to end through the
	// public registry under the forced sparse engine, dense-oracle-checked
	// untimed. The GC stays on here (unlike the greedy loop above): these
	// cores are allocation-heavy and the CI scale-smoke job pins their
	// peak RSS under the same 1 GB ceiling as greedy. The pipeline gets
	// an additional n=50000 row behind the same OBLIVIOUS_SCALE_FULL=1
	// opt-in as the greedy n=50000 run (the arena + bounded-pool rework
	// is what makes that size finish at all).
	for _, solver := range []string{"pipeline", "distributed"} {
		sizes := []int{10000}
		if solver == "pipeline" && os.Getenv("OBLIVIOUS_SCALE_FULL") != "" {
			sizes = append(sizes, 50000)
		}
		for _, n := range sizes {
			in := scaleInstance(b, n)
			b.Run(fmt.Sprintf("n=%d/solver=%s/mode=sparse", n, solver), func(b *testing.B) {
				b.ReportAllocs()
				runtime.GC()
				var sched *oblivious.Schedule
				var stats oblivious.Stats
				cp := benchio.Begin()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := oblivious.Lookup(solver).Solve(context.Background(), m, in,
						oblivious.WithAffectanceMode(oblivious.AffectSparse))
					if err != nil {
						b.Fatal(err)
					}
					sched, stats = res.Schedule, res.Stats
				}
				b.StopTimer()
				met := cp.End(b)
				if stats.Engine != "sparse" {
					b.Fatalf("%s ran on engine %q, want sparse", solver, stats.Engine)
				}
				if err := m.CheckSchedule(in, sinr.Bidirectional, sched); err != nil {
					b.Fatalf("%s schedule fails the dense oracle: %v", solver, err)
				}
				scaleRec.Record(fmt.Sprintf("SparseScale/%07d/%s/sparse", n, solver),
					scaleRow{Benchmark: "SparseScale", N: n, Solver: solver, Mode: "sparse", Colors: sched.NumColors(), Metrics: met})
			})
		}
	}
}
